package repro

// One benchmark group per paper artifact (DESIGN.md §4):
//
//	BenchmarkT1_*  — Table I: frontend (lexing, parsing, checking)
//	BenchmarkT2_*  — Table II: parallel primitives (barrier, put/get, locks)
//	BenchmarkT3_*  — Table III: math/random extensions
//	BenchmarkF2_*  — Figure 2: the barrier-synchronized neighbour exchange
//	BenchmarkE1_*  — interpreter vs compiled backend
//	BenchmarkE2_*  — weak-scaling n-body under machine models
//	BenchmarkE3_*  — lcc source-to-source emission
//
// Run all with: go test -bench=. -benchmem .

import (
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/backend"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gogen"
	"repro/internal/interp"
	"repro/internal/lolfmt"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/shmem"
	"repro/internal/value"
	"repro/internal/vm"
)

func mustReadNBody(b *testing.B) string {
	b.Helper()
	src, err := os.ReadFile("testdata/nbody.lol")
	if err != nil {
		b.Fatal(err)
	}
	return string(src)
}

func mustParse(b *testing.B, src string) *core.Program {
	b.Helper()
	prog, err := core.Parse("bench.lol", src)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// --- T1: frontend over the paper's largest listing -------------------------

func BenchmarkT1_ParseNBody(b *testing.B) {
	src := mustReadNBody(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse("nbody.lol", src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1_CheckNBody(b *testing.B) {
	src := mustReadNBody(b)
	tree, err := parser.Parse("nbody.lol", src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sema.Check(tree); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1_CompileNBody(b *testing.B) {
	src := mustReadNBody(b)
	tree, err := parser.Parse("nbody.lol", src)
	if err != nil {
		b.Fatal(err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile(info); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T2: parallel primitives ------------------------------------------------

func BenchmarkT2_Barrier(b *testing.B) {
	for _, alg := range []shmem.BarrierAlg{shmem.BarrierCentral, shmem.BarrierDissemination} {
		for _, np := range []int{4, 16} {
			b.Run(fmt.Sprintf("%v/np%d", alg, np), func(b *testing.B) {
				world, err := shmem.NewWorld(np, nil, 0, shmem.Options{Barrier: alg})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				err = world.Run(func(pe *shmem.PE) error {
					for i := 0; i < b.N; i++ {
						if err := pe.Barrier(); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

func BenchmarkT2_RemotePut(b *testing.B) {
	syms := []shmem.SymbolSpec{{Name: "x"}}
	world, err := shmem.NewWorld(2, syms, 0, shmem.Options{Model: machine.NewParallella()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	err = world.Run(func(pe *shmem.PE) error {
		if pe.ID() != 0 {
			return nil
		}
		v := value.NewNumbr(42)
		for i := 0; i < b.N; i++ {
			if err := pe.Put(1, 0, v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkT2_RemoteGet(b *testing.B) {
	syms := []shmem.SymbolSpec{{Name: "x"}}
	world, err := shmem.NewWorld(2, syms, 0, shmem.Options{Model: machine.NewParallella()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	err = world.Run(func(pe *shmem.PE) error {
		if pe.ID() != 0 {
			return pe.InitScalar(0, value.NewNumbr(7))
		}
		for i := 0; i < b.N; i++ {
			if _, err := pe.Get(1, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkT2_LockUncontended(b *testing.B) {
	world, err := shmem.NewWorld(1, nil, 1, shmem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = world.Run(func(pe *shmem.PE) error {
		for i := 0; i < b.N; i++ {
			if err := pe.SetLock(0); err != nil {
				return err
			}
			if err := pe.ClearLock(0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkT2_LockContended(b *testing.B) {
	const np = 4
	world, err := shmem.NewWorld(np, nil, 1, shmem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = world.Run(func(pe *shmem.PE) error {
		for i := 0; i < b.N/np+1; i++ {
			if err := pe.SetLock(0); err != nil {
				return err
			}
			if err := pe.ClearLock(0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// --- T3: additional extensions ----------------------------------------------

func BenchmarkT3_MathOps(b *testing.B) {
	x := value.NewNumbar(3.25)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sq, err := value.Unary(value.OpSquar, x)
		if err != nil {
			b.Fatal(err)
		}
		root, err := value.Unary(value.OpUnsquar, sq)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := value.Unary(value.OpFlip, root); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT3_BinaryDispatch(b *testing.B) {
	x, y := value.NewNumbar(1.5), value.NewNumbr(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := value.Binary(value.OpSum, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F2: the Figure 2 neighbour exchange ------------------------------------

func BenchmarkF2_Exchange(b *testing.B) {
	src, err := os.ReadFile("testdata/fig2.lol")
	if err != nil {
		b.Fatal(err)
	}
	prog := mustParse(b, string(src))
	cp, err := prog.Compiled()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.Run(interp.Config{NP: 4, Seed: 1, Stdout: io.Discard}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1: interpreter vs compiled backend ------------------------------------

func BenchmarkE1_Backends(b *testing.B) {
	src := experiments.GenNBody(8, 2)
	for _, backend := range []core.Backend{core.BackendInterp, core.BackendCompile} {
		backend := backend
		b.Run(backend.String(), func(b *testing.B) {
			prog := mustParse(b, src)
			if backend == core.BackendCompile {
				if _, err := prog.Compiled(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := prog.Run(core.RunConfig{
					Backend: backend,
					Config:  interp.Config{NP: 2, Seed: 7},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E2: weak scaling under the Parallella model ------------------------------

func BenchmarkE2_NBodyWeakScaling(b *testing.B) {
	for _, np := range []int{1, 2, 4, 8} {
		np := np
		b.Run(fmt.Sprintf("np%d", np), func(b *testing.B) {
			prog := mustParse(b, experiments.GenNBody(8, 2))
			cp, err := prog.Compiled()
			if err != nil {
				b.Fatal(err)
			}
			model := machine.NewParallella()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cp.Run(interp.Config{NP: np, Seed: 7, Model: model}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3: the source-to-source emitter -----------------------------------------

func BenchmarkE3_EmitNBody(b *testing.B) {
	src := mustReadNBody(b)
	prog := mustParse(b, src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gogen.Emit(prog.Info); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_FormatNBody(b *testing.B) {
	src := mustReadNBody(b)
	prog := mustParse(b, src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = lolfmt.Format(prog.AST)
	}
}

// --- Backend matrix: interp vs VM vs compile over the paper kernels ----------

// benchBackendKernels runs the montecarlo and nbody kernels on one backend
// so `benchstat` lines up the same kernel across BenchmarkBackend{Interp,
// VM,Compile} — the three-point trajectory of the paper's
// compiler-vs-interpreter claim across the execution design space.
func benchBackendKernels(b *testing.B, backend core.Backend) {
	kernels := []struct {
		name string
		src  string
		np   int
	}{
		{"montecarlo", experiments.GenMonteCarlo(2_000, 2), 2},
		{"nbody", experiments.GenNBody(8, 2), 2},
	}
	for _, k := range kernels {
		k := k
		b.Run(k.name, func(b *testing.B) {
			prog := mustParse(b, k.src)
			// Prepare outside the timed region, as a real launcher would.
			switch backend {
			case core.BackendCompile:
				if _, err := prog.Compiled(); err != nil {
					b.Fatal(err)
				}
			case core.BackendVM:
				if _, err := prog.Bytecode(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := prog.Run(core.RunConfig{
					Backend: backend,
					Config:  interp.Config{NP: k.np, Seed: 7, Stdout: io.Discard},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBackendInterp(b *testing.B)  { benchBackendKernels(b, core.BackendInterp) }
func BenchmarkBackendVM(b *testing.B)      { benchBackendKernels(b, core.BackendVM) }
func BenchmarkBackendCompile(b *testing.B) { benchBackendKernels(b, core.BackendCompile) }

// --- E1 ablation: what do the typed fast paths buy? --------------------------

func BenchmarkE1_SpecializationAblation(b *testing.B) {
	src := experiments.GenNBody(8, 2)
	tree, err := parser.Parse("ablation.lol", src)
	if err != nil {
		b.Fatal(err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		opts compile.Options
	}{
		{"specialized", compile.Options{}},
		{"generic", compile.Options{DisableSpecialization: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			p, err := compile.CompileOpts(info, cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(interp.Config{NP: 2, Seed: 7}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- VM ablation: what do fused superinstructions buy? ------------------------

func BenchmarkVM_FusionAblation(b *testing.B) {
	for _, k := range []struct {
		name string
		src  string
		np   int
	}{
		{"montecarlo", experiments.GenMonteCarlo(2_000, 2), 2},
		{"nbody", experiments.GenNBody(8, 2), 2},
	} {
		tree, err := parser.Parse("ablation.lol", k.src)
		if err != nil {
			b.Fatal(err)
		}
		info, err := sema.Check(tree)
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range []struct {
			name string
			opts vm.Options
		}{
			{"fused", vm.Options{}},
			{"unfused", vm.Options{DisableFusion: true}},
		} {
			cfg := cfg
			b.Run(k.name+"/"+cfg.name, func(b *testing.B) {
				p, err := vm.CompileOpts(info, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := p.Run(backend.Config{NP: k.np, Seed: 7, Stdout: io.Discard}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
