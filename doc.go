// Package repro is a complete Go reproduction of "I Can Has Supercomputer?
// A Novel Approach to Teaching Parallel and Distributed Computing Concepts
// Using a Meme-Based Programming Language" (Richie & Ross, 2017): parallel
// LOLCODE — LOLCODE-1.2 with SPMD/PGAS extensions — together with every
// substrate the paper depends on.
//
// The pieces, bottom to top:
//
//   - internal/shmem: an OpenSHMEM-flavoured PGAS runtime over goroutines
//     (symmetric heaps, one-sided put/get, barriers, locks, collectives);
//   - internal/noc and internal/machine: latency models for the paper's
//     platforms — the Epiphany-III 2D-mesh NoC on the Parallella board and
//     a Cray XC40-style hierarchy;
//   - internal/lexer, parser, sema: the language frontend for Tables I-III;
//     sema also performs the slot-resolution pass that assigns every
//     variable its frame slot and lexical depth, shared by all backends;
//   - internal/backend: the Backend interface, engine registry, and the
//     SPMD execution plumbing (Config, Result, per-PE output) every engine
//     shares — including the cancellation/budget contract (Config.Context,
//     Config.StepBudget, Meter) that bounds every run's wall clock and
//     per-PE step count;
//   - internal/interp, vm, compile: the three execution engines spanning
//     the classic design space — a tree-walking interpreter, a
//     slot-addressed bytecode VM (with a superinstruction fusion pass,
//     unboxed arithmetic fast paths, and weight-preserving step metering;
//     `lolrun -dump-bytecode` prints the fused listing), and a closure
//     compiler (select one with `lolrun -backend=interp|vm|compile`);
//   - internal/gogen: the LOLCODE-to-Go source emitter (the paper's lcc
//     emitted C + OpenSHMEM), with a typed fast path that unboxes
//     statically-known NUMBR/NUMBAR locals to raw Go scalars; emitted
//     mains speak the internal/native/child protocol so they can serve
//     as lolserv's fourth execution tier;
//   - internal/native: the native tier's mechanics — an on-disk binary
//     cache keyed by source sha256 + gogen version (with an optional byte
//     quota that evicts least-recently-used binaries), and a subprocess
//     runner that maps a job's budgets onto the child (RLIMIT_CPU for the
//     step budget, context kill for deadlines, pipe caps for output);
//     children self-jail via internal/native/sandbox — rlimits plus a
//     Landlock deny-all filesystem policy where the kernel offers it — so
//     untrusted promoted code is contained by the OS, not by cooperative
//     metering, and internal/faultinject gives the chaos tests (and
//     operators running drills) failpoints inside the build, run, and
//     result-cache paths;
//   - internal/server: the concurrent job-execution service — an LRU
//     compiled-program cache (parse+sema+codegen once per unique program),
//     a deterministic result cache with singleflight coalescing (identical
//     jobs execute once; a run is cacheable iff its determinism audit
//     passes — no GIMMEH arbitration, shared state, or locks at NP>1, see
//     backend.Audit — and it completed ok, untruncated, under grouped
//     output), a batch API, a bounded worker pool with a per-program
//     fairness queue, enforced per-job deadlines and step budgets, and
//     the promotion policy of the four-tier execution ladder: programs
//     whose cache hit count crosses a threshold are compiled in the
//     background to standalone binaries and served as subprocesses;
//   - cmd/lcc, lolrun, lolfmt, lolbench, lolserv: the toolchain, the SPMD
//     launcher (coprsh/aprun analog), a formatter, the experiment harness,
//     and the HTTP execution daemon (`lolbench serve` load-tests it).
//
// bench_test.go in this directory carries one benchmark group per paper
// artifact; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
