package main_test

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes one of this module's commands via `go run`.
func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	moduleRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goTool, append([]string{"run"}, args...)...)
	cmd.Dir = moduleRoot
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err = cmd.Run()
	return out.String(), errb.String(), err
}

// TestLolrunEndToEnd is the launcher workflow of §VI.E: run the Figure 2
// program on 4 PEs under the Parallella model with stats.
func TestLolrunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain test")
	}
	stdout, stderr, err := runCLI(t,
		"./cmd/lolrun", "-np", "4", "-group", "-stats", "-machine", "parallella",
		"testdata/fig2.lol")
	if err != nil {
		t.Fatalf("lolrun failed: %v\nstderr: %s", err, stderr)
	}
	want := "PE 0: a=10 b=40 c=50\nPE 1: a=20 b=10 c=30\nPE 2: a=30 b=20 c=50\nPE 3: a=40 b=30 c=70\n"
	if stdout != want {
		t.Errorf("stdout = %q, want %q", stdout, want)
	}
	for _, needle := range []string{"remote puts: 4", "barriers:", "sim time:"} {
		if !strings.Contains(stderr, needle) {
			t.Errorf("stats output missing %q:\n%s", needle, stderr)
		}
	}
}

func TestLolrunInterpBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain test")
	}
	stdout, stderr, err := runCLI(t,
		"./cmd/lolrun", "-np", "2", "-group", "-backend", "interp", "testdata/trylock.lol")
	if err != nil {
		t.Fatalf("lolrun failed: %v\nstderr: %s", err, stderr)
	}
	if !strings.Contains(stdout, "PE 0 DUN MESIN") {
		t.Errorf("unexpected output %q", stdout)
	}
}

// exitCode extracts the process exit code from a runCLI error; -1 means
// the command did not run or was killed.
func exitCode(err error) int {
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// TestLolrunNonzeroExitOnRuntimeError asserts the launcher's exit-code
// contract: a program that dies mid-run (after producing output) must
// exit nonzero, never 0.
func TestLolrunNonzeroExitOnRuntimeError(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain test")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "dies.lol")
	src := "HAI 1.2\nVISIBLE \"before the crash\"\nVISIBLE QUOSHUNT OF 1 AN 0\nKTHXBYE\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := runCLI(t, "./cmd/lolrun", path)
	if err == nil {
		t.Fatalf("program that dies mid-run exited 0\nstdout: %s", stdout)
	}
	if code := exitCode(err); code <= 0 {
		t.Errorf("exit code = %d, want > 0", code)
	}
	if !strings.Contains(stderr, "division by zero") {
		t.Errorf("stderr missing the runtime error:\n%s", stderr)
	}
	if !strings.Contains(stdout, "before the crash") {
		t.Errorf("output before the crash was dropped:\n%s", stdout)
	}
}

// TestLolrunMaxStepsKillsInfiniteLoop checks the -max-steps budget kills
// a spin loop with a nonzero exit on every backend.
func TestLolrunMaxStepsKillsInfiniteLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain test")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "spin.lol")
	src := "HAI 1.2\nI HAS A x ITZ 0\nIM IN YR forever\n  x R SUM OF x AN 1\nIM OUTTA YR forever\nKTHXBYE\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{"interp", "vm", "compile"} {
		_, stderr, err := runCLI(t, "./cmd/lolrun", "-backend", backend, "-max-steps", "50000", path)
		if err == nil {
			t.Fatalf("%s: infinite loop exited 0 under -max-steps", backend)
		}
		if code := exitCode(err); code <= 0 {
			t.Errorf("%s: exit code = %d, want > 0", backend, code)
		}
		if !strings.Contains(stderr, "step budget exceeded") {
			t.Errorf("%s: stderr missing budget error:\n%s", backend, stderr)
		}
	}
}

// TestLolrunDumpBytecode checks -dump-bytecode prints the fused listing
// (chunk header, fused superinstructions with step weights) and exits 0
// without running the program.
func TestLolrunDumpBytecode(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain test")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "loop.lol")
	// The marker only exists at runtime (the listing shows the operands 40
	// and 2, never the sum), so its absence proves the program did not run.
	src := "HAI 1.2\nI HAS A x ITZ 0\nIM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10\n  x R SUM OF x AN i\nIM OUTTA YR l\nVISIBLE SUM OF 40 AN 2\nKTHXBYE\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := runCLI(t, "./cmd/lolrun", "-dump-bytecode", path)
	if err != nil {
		t.Fatalf("lolrun -dump-bytecode failed: %v\n%s", err, stderr)
	}
	if strings.Contains(stdout, "42") {
		t.Errorf("-dump-bytecode executed the program:\n%s", stdout)
	}
	for _, needle := range []string{"== main", "fuse.", "; w="} {
		if !strings.Contains(stdout, needle) {
			t.Errorf("listing missing %q:\n%s", needle, stdout)
		}
	}
}

func TestLolrunRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain test")
	}
	if _, _, err := runCLI(t, "./cmd/lolrun", "-machine", "cray-1", "testdata/fig2.lol"); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, _, err := runCLI(t, "./cmd/lolrun", "-backend", "jit", "testdata/fig2.lol"); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestLccCheckMode runs the compiler driver in -check mode over the n-body
// listing and expects the summary diagnostics on stderr.
func TestLccCheckMode(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain test")
	}
	_, stderr, err := runCLI(t, "./cmd/lcc", "-check", "testdata/nbody.lol")
	if err != nil {
		t.Fatalf("lcc -check failed: %v\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "OK (2 shared symbols, 2 locks, 0 functions)") {
		t.Errorf("unexpected summary: %s", stderr)
	}
}

// TestLolfmtStdout checks the formatter CLI round-trips a program.
func TestLolfmtStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain test")
	}
	stdout, stderr, err := runCLI(t, "./cmd/lolfmt", "testdata/fig2.lol")
	if err != nil {
		t.Fatalf("lolfmt failed: %v\n%s", err, stderr)
	}
	if !strings.HasPrefix(stdout, "HAI 1.2\n") || !strings.Contains(stdout, "TXT MAH BFF k,") {
		t.Errorf("unexpected formatter output:\n%s", stdout)
	}
}
