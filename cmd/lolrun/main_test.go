package main_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes one of this module's commands via `go run`.
func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	moduleRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goTool, append([]string{"run"}, args...)...)
	cmd.Dir = moduleRoot
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err = cmd.Run()
	return out.String(), errb.String(), err
}

// TestLolrunEndToEnd is the launcher workflow of §VI.E: run the Figure 2
// program on 4 PEs under the Parallella model with stats.
func TestLolrunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain test")
	}
	stdout, stderr, err := runCLI(t,
		"./cmd/lolrun", "-np", "4", "-group", "-stats", "-machine", "parallella",
		"testdata/fig2.lol")
	if err != nil {
		t.Fatalf("lolrun failed: %v\nstderr: %s", err, stderr)
	}
	want := "PE 0: a=10 b=40 c=50\nPE 1: a=20 b=10 c=30\nPE 2: a=30 b=20 c=50\nPE 3: a=40 b=30 c=70\n"
	if stdout != want {
		t.Errorf("stdout = %q, want %q", stdout, want)
	}
	for _, needle := range []string{"remote puts: 4", "barriers:", "sim time:"} {
		if !strings.Contains(stderr, needle) {
			t.Errorf("stats output missing %q:\n%s", needle, stderr)
		}
	}
}

func TestLolrunInterpBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain test")
	}
	stdout, stderr, err := runCLI(t,
		"./cmd/lolrun", "-np", "2", "-group", "-backend", "interp", "testdata/trylock.lol")
	if err != nil {
		t.Fatalf("lolrun failed: %v\nstderr: %s", err, stderr)
	}
	if !strings.Contains(stdout, "PE 0 DUN MESIN") {
		t.Errorf("unexpected output %q", stdout)
	}
}

func TestLolrunRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain test")
	}
	if _, _, err := runCLI(t, "./cmd/lolrun", "-machine", "cray-1", "testdata/fig2.lol"); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, _, err := runCLI(t, "./cmd/lolrun", "-backend", "jit", "testdata/fig2.lol"); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestLccCheckMode runs the compiler driver in -check mode over the n-body
// listing and expects the summary diagnostics on stderr.
func TestLccCheckMode(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain test")
	}
	_, stderr, err := runCLI(t, "./cmd/lcc", "-check", "testdata/nbody.lol")
	if err != nil {
		t.Fatalf("lcc -check failed: %v\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "OK (2 shared symbols, 2 locks, 0 functions)") {
		t.Errorf("unexpected summary: %s", stderr)
	}
}

// TestLolfmtStdout checks the formatter CLI round-trips a program.
func TestLolfmtStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain test")
	}
	stdout, stderr, err := runCLI(t, "./cmd/lolfmt", "testdata/fig2.lol")
	if err != nil {
		t.Fatalf("lolfmt failed: %v\n%s", err, stderr)
	}
	if !strings.HasPrefix(stdout, "HAI 1.2\n") || !strings.Contains(stdout, "TXT MAH BFF k,") {
		t.Errorf("unexpected formatter output:\n%s", stdout)
	}
}
