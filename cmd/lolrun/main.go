// Command lolrun launches a parallel-LOLCODE program SPMD, playing the role
// of the paper's coprsh (Parallella) and aprun (Cray XC40) launchers:
//
//	lolrun -np 16 -machine parallella testdata/nbody.lol
//	lolrun -np 1024 -machine xc40 -backend interp testdata/fig2.lol
//	lolrun -np 4 -backend vm -timeout 5s -max-steps 1000000 testdata/fig2.lol
//
// The -backend flag selects the execution engine (any registered
// backend.Backend: interp, vm, or compile); -machine selects the latency
// model the PGAS runtime charges for one-sided operations; -stats prints
// the operation counters and per-PE simulated time after the run.
// -timeout bounds the run's wall clock and -max-steps bounds each PE's
// step count, the same budgets cmd/lolserv enforces on every job.
// -dump-bytecode prints the vm backend's bytecode listing (after
// superinstruction fusion, with per-instruction step weights) and exits
// without running the program.
//
// Exit codes: 0 on success, 1 when the program fails to parse, dies at
// runtime, or exceeds a budget; 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/shmem"
	"repro/internal/trace"
	"repro/internal/vm"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main with an exit code, so every path's code is auditable (and
// testable): nothing below calls os.Exit.
func run(args []string) int {
	fs := flag.NewFlagSet("lolrun", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	np := fs.Int("np", 1, "number of processing elements")
	machineName := fs.String("machine", "smp", "cost model: "+strings.Join(machine.Names(), ", "))
	backendName := fs.String("backend", "compile", "execution backend: "+strings.Join(backend.Names(), ", "))
	seed := fs.Int64("seed", 1, "base RNG seed (PE i uses seed+i)")
	group := fs.Bool("group", false, "buffer output per PE and emit it grouped in rank order")
	stats := fs.Bool("stats", false, "print runtime statistics after the run")
	traceFlag := fs.Bool("trace", false, "record runtime events and draw the data movement per barrier phase")
	dissem := fs.Bool("dissemination-barrier", false, "use the dissemination barrier instead of the central one")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the run (0 = unlimited)")
	maxSteps := fs.Int64("max-steps", 0, "per-PE step budget (0 = unlimited)")
	dumpBytecode := fs.Bool("dump-bytecode", false, "print the vm backend's bytecode (after superinstruction fusion) and exit without running")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lolrun [flags] code.lol\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	model, err := machine.ByName(*machineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	eng, err := backend.ByName(*backendName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lolrun: %v\n", err)
		return 2
	}
	if *maxSteps < 0 {
		fmt.Fprintln(os.Stderr, "lolrun: -max-steps must be non-negative")
		return 2
	}
	if *timeout < 0 {
		fmt.Fprintln(os.Stderr, "lolrun: -timeout must be non-negative")
		return 2
	}
	alg := shmem.BarrierCentral
	if *dissem {
		alg = shmem.BarrierDissemination
	}

	prog, err := core.ParseFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *dumpBytecode {
		vp, err := prog.Bytecode()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Print(vm.Disassemble(vp))
		return 0
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var rec trace.Recorder
	cfg := interp.Config{
		NP:          *np,
		Model:       model,
		Barrier:     alg,
		Seed:        *seed,
		Stdout:      os.Stdout,
		Stderr:      os.Stderr,
		Stdin:       os.Stdin,
		GroupOutput: *group,
		Context:     ctx,
		StepBudget:  *maxSteps,
	}
	if *traceFlag {
		cfg.Tracer = rec.Record
	}
	res, err := eng.Run(prog.Info, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *traceFlag {
		symbols := make([]string, len(prog.Info.Shared))
		for i, s := range prog.Info.Shared {
			symbols[i] = s.Name
		}
		fmt.Fprintf(os.Stderr, "--- data movement (per barrier phase) ---\n")
		rec.Render(os.Stderr, *np, symbols)
		rec.Summary(os.Stderr, *np)
	}
	if *stats {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "--- lolrun stats (np=%d, machine=%s, backend=%s) ---\n",
			*np, model.Name(), eng.Name())
		fmt.Fprintf(os.Stderr, "remote puts: %d (%d bytes)\n", s.RemotePuts, s.PutBytes)
		fmt.Fprintf(os.Stderr, "remote gets: %d (%d bytes)\n", s.RemoteGets, s.GetBytes)
		fmt.Fprintf(os.Stderr, "barriers:    %d\n", s.Barriers)
		fmt.Fprintf(os.Stderr, "lock ops:    %d acquired, %d contended\n", s.LockAcquires, s.LockContended)
		var maxNanos float64
		for _, ns := range res.SimNanos {
			if ns > maxNanos {
				maxNanos = ns
			}
		}
		fmt.Fprintf(os.Stderr, "sim time:    %.3f us (slowest PE, %s model)\n", maxNanos/1000, model.Name())
	}
	return 0
}
