// Command lolfmt formats parallel-LOLCODE source in the canonical style,
// gofmt-fashion:
//
//	lolfmt code.lol            # formatted source to stdout
//	lolfmt -w code.lol more.lol  # rewrite files in place
//	lolfmt -l *.lol            # list files whose formatting differs
//
// Comments are not preserved (the scanner discards them); -w refuses to
// run on files containing comments unless -force is given.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/core"
	"repro/internal/lolfmt"
)

var commentRE = regexp.MustCompile(`(?m)(^|\s)(BTW|OBTW)(\s|$)`)

func main() {
	write := flag.Bool("w", false, "write result back to the source file")
	list := flag.Bool("l", false, "list files whose formatting differs")
	force := flag.Bool("force", false, "allow -w on files containing comments (comments are dropped)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lolfmt [-w] [-l] [-force] file.lol...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	exit := 0
	for _, path := range flag.Args() {
		if err := one(path, *write, *list, *force); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func one(path string, write, list, force bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := core.Parse(path, string(src))
	if err != nil {
		return err
	}
	formatted := lolfmt.Format(prog.AST)

	switch {
	case list:
		if formatted != string(src) {
			fmt.Println(path)
		}
	case write:
		if commentRE.Match(src) && !force {
			return fmt.Errorf("lolfmt: %s contains comments, which formatting would drop; use -force to rewrite anyway", path)
		}
		if formatted == string(src) {
			return nil
		}
		return os.WriteFile(path, []byte(formatted), 0o644)
	default:
		os.Stdout.WriteString(formatted)
	}
	return nil
}
