// Command lolserv is the parallel-LOLCODE execution service: an HTTP
// daemon over internal/server that accepts programs as JSON jobs, serves
// compiled artifacts from an LRU program cache, and runs them on a
// bounded worker pool under enforced wall-clock and step budgets.
//
//	lolserv -addr :8404 -workers 8 -cache 256
//	curl -s localhost:8404/v1/run -d '{"src":"HAI 1.2\nVISIBLE ME\nKTHXBYE","np":4}'
//
// See internal/server/README.md for the API and budget semantics, and
// `lolbench serve` for the load-generator experiment against this server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8404", "listen address")
	workers := flag.Int("workers", 4, "concurrently executing jobs")
	queue := flag.Int("queue", 64, "jobs allowed to wait for a worker")
	cacheSize := flag.Int("cache", 128, "compiled programs kept in the LRU cache")
	maxNP := flag.Int("max-np", 64, "PE count limit per job")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-job wall-clock budget")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "largest wall-clock budget a job may request")
	maxSteps := flag.Int64("max-steps", 500_000_000, "largest per-PE step budget a job may request")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lolserv [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return 2
	}

	srv := server.New(server.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		MaxNP:          *maxNP,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxStepBudget:  *maxSteps,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("lolserv: listening on %s (workers=%d queue=%d cache=%d max-np=%d timeout=%s)",
		*addr, *workers, *queue, *cacheSize, *maxNP, *timeout)

	select {
	case err := <-errCh:
		log.Printf("lolserv: %v", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight jobs finish up to the
	// job deadline; anything still running is cancelled by its context.
	log.Printf("lolserv: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *maxTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("lolserv: shutdown: %v", err)
		return 1
	}
	st := srv.Stats()
	log.Printf("lolserv: served %d jobs (%d ok, %d failed, %d rejected), cache %d/%d hit rate %.1f%%",
		st.JobsRun, st.JobsOK, st.JobsFailed, st.JobsRejected,
		st.Cache.Hits, st.Cache.Hits+st.Cache.Misses, 100*st.Cache.HitRate())
	return 0
}
