// Command lolserv is the parallel-LOLCODE execution service: an HTTP
// daemon over internal/server that accepts programs as JSON jobs (singly
// via /v1/run or a whole assignment at once via /v1/batch), serves
// compiled artifacts from an LRU program cache and repeated
// deterministic jobs from a result cache (disable with -result-cache=0),
// and runs whatever must actually execute on a bounded worker pool under
// enforced wall-clock and step budgets. With -native-threshold set, hot
// programs are additionally promoted in the background to standalone
// gogen-compiled binaries and served as self-jailing subprocesses
// (rlimits + Landlock; see the Isolation contract in
// internal/server/README.md) — the fourth tier of the execution ladder,
// bounded on disk by -native-cache-max-bytes and guarded by a tier-wide
// circuit breaker that keeps jobs in-process while the tier is failing.
//
//	lolserv -addr :8404 -workers 8 -cache 256
//	lolserv -native-threshold 3 -native-cache-dir /var/cache/lolserv
//	lolserv -log-format json -debug-addr 127.0.0.1:8405
//	curl -s localhost:8404/v1/run -d '{"src":"HAI 1.2\nVISIBLE ME\nKTHXBYE","np":4}'
//
// The daemon is fully observable: every request is logged as one
// structured slog line (-log-level, -log-format), Prometheus metrics are
// exposed at /metrics, the slowest recent requests with per-stage timings
// at /v1/debug/slow, and -debug-addr starts a second, operator-only
// listener carrying net/http/pprof (plus /metrics) that should stay on
// loopback.
//
// See internal/server/README.md for the API, cacheability, budget, and
// observability semantics, and `lolbench serve` (-scenario zipf) for the
// load-generator experiments against this server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/faultinject"
	"repro/internal/native"
	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8404", "listen address")
	workers := flag.Int("workers", 4, "concurrently executing jobs")
	queue := flag.Int("queue", 64, "jobs allowed to wait for a worker")
	cacheSize := flag.Int("cache", 128, "compiled programs kept in the LRU cache")
	resultCache := flag.Int("result-cache", 512, "deterministic results kept in the LRU result cache (0 disables)")
	maxBatch := flag.Int("max-batch", 256, "jobs allowed in one /v1/batch request")
	maxNP := flag.Int("max-np", 64, "PE count limit per job")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-job wall-clock budget")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "largest wall-clock budget a job may request")
	maxSteps := flag.Int64("max-steps", 500_000_000, "largest per-PE step budget a job may request")
	schedMode := flag.String("sched", "auto",
		"default SPMD scheduler for jobs that don't set the request field: auto (worker pool at high NP on capable engines), goroutines, or workers")
	nativeThreshold := flag.Int64("native-threshold", 0,
		"program-cache hits before a program is promoted to a gogen-compiled binary (0 disables the native tier)")
	nativeCacheDir := flag.String("native-cache-dir", "",
		"directory for promoted binaries (default: lolserv-native under the OS temp dir)")
	nativeBuilds := flag.Int("native-builds", 1, "concurrent background go builds for promotions")
	nativeCacheMax := flag.Int64("native-cache-max-bytes", 0,
		"byte quota for the promoted-binary cache; least-recently-used binaries are evicted (0 = unlimited)")
	nativeMem := flag.Int64("native-mem-limit", 0,
		"RLIMIT_AS for each native child in bytes (0 = 4 GiB default, -1 = unlimited)")
	nativeSandbox := flag.Bool("native-sandbox", true,
		"self-jail native children (rlimits + Landlock where available); false is for benchmarking only")
	logLevel := flag.String("log-level", "info", "request log level: debug, info, warn, or error")
	logFormat := flag.String("log-format", "text", "request log format: text or json")
	debugAddr := flag.String("debug-addr", "",
		"optional second listen address for pprof and /metrics (keep it on loopback)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lolserv [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return 2
	}

	resultCacheSize := *resultCache
	if resultCacheSize == 0 {
		resultCacheSize = -1 // flag 0 = off; Options 0 = default
	}
	sched, err := backend.ParseSchedMode(*schedMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lolserv: %v\n", err)
		return 2
	}
	// The native tier needs a go toolchain and a module checkout to build
	// promoted binaries in; when either is missing the server warns and
	// runs three-tiered rather than refusing to start.
	var nativeCache *native.Cache
	if *nativeThreshold > 0 {
		var err error
		if nativeCache, err = native.NewCache(*nativeCacheDir, ""); err != nil {
			log.Printf("lolserv: native tier disabled: %v", err)
		} else {
			if *nativeCacheMax > 0 {
				nativeCache.SetMaxBytes(*nativeCacheMax)
			}
			log.Printf("lolserv: native tier enabled (threshold=%d builds=%d cache=%s quota=%d sandbox=%v)",
				*nativeThreshold, *nativeBuilds, nativeCache.Dir(), *nativeCacheMax, *nativeSandbox)
		}
	}
	// Failpoints are off unless the environment says otherwise; when it
	// does, shout — a live failpoint in production is an incident.
	if armed, err := faultinject.ArmFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "lolserv: %s: %v\n", faultinject.EnvVar, err)
		return 2
	} else if len(armed) > 0 {
		log.Printf("lolserv: WARNING: failpoints armed via %s: %v — this server WILL inject faults", faultinject.EnvVar, armed)
	}
	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lolserv: %v\n", err)
		return 2
	}
	srv := server.New(server.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheSize:       *cacheSize,
		ResultCacheSize: resultCacheSize,
		MaxBatchJobs:    *maxBatch,
		MaxNP:           *maxNP,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxStepBudget:   *maxSteps,
		Sched:           sched,
		NativeCache:     nativeCache,
		NativeThreshold: *nativeThreshold,
		NativeBuilds:    *nativeBuilds,
		NativeMemBytes:  *nativeMem,
		NativeNoSandbox: !*nativeSandbox,
		Logger:          logger,
	})
	defer srv.Close()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	// The debug listener is separate from the API on purpose: pprof can
	// stall the process and dump internals, so it binds where the operator
	// says (loopback) and is never reachable through the public handler.
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("lolserv: debug listener: %v", err)
			}
		}()
		log.Printf("lolserv: debug listener (pprof, /metrics) on %s", *debugAddr)
	}
	log.Printf("lolserv: listening on %s (workers=%d queue=%d cache=%d result-cache=%d max-batch=%d max-np=%d timeout=%s)",
		*addr, *workers, *queue, *cacheSize, *resultCache, *maxBatch, *maxNP, *timeout)

	select {
	case err := <-errCh:
		log.Printf("lolserv: %v", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight jobs finish up to the
	// job deadline; anything still running is cancelled by its context.
	log.Printf("lolserv: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *maxTimeout)
	defer cancel()
	if debugSrv != nil {
		_ = debugSrv.Close() // nothing in flight worth draining on the debug port
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("lolserv: shutdown: %v", err)
		return 1
	}
	st := srv.Stats()
	log.Printf("lolserv: served %d jobs (%d ok, %d failed, %d rejected), %d batches, program cache %d/%d hit rate %.1f%%",
		st.JobsRun, st.JobsOK, st.JobsFailed, st.JobsRejected, st.BatchesRun,
		st.Cache.Hits, st.Cache.Hits+st.Cache.Misses, 100*st.Cache.HitRate())
	if rc := st.ResultCache; rc.Enabled {
		log.Printf("lolserv: result cache served %d of %d cacheable jobs without executing (%d hits, %d coalesced, %d misses, %d bypassed)",
			rc.Hits+rc.Coalesced, rc.Hits+rc.Coalesced+rc.Misses, rc.Hits, rc.Coalesced, rc.Misses, rc.Bypassed)
	}
	if nt := st.Native; nt.Enabled {
		log.Printf("lolserv: native tier ran %d jobs (%d promotions, %d unsupported, %d build failures, %d demotions, %d fallbacks, %d evictions, breaker %s/%d trips, sandbox %s)",
			nt.Runs, nt.Promotions, nt.Unsupported, nt.BuildFailures, nt.Demotions, nt.Fallbacks,
			nt.Evictions, nt.Breaker, nt.BreakerTrips, nt.Sandbox)
	}
	return 0
}

// buildLogger assembles the request logger from the -log-level and
// -log-format flags. Request logs go to stderr alongside the daemon's
// own log lines.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: want debug, info, warn, or error", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
	}
}
