// Command lolbench regenerates every table and figure of Richie & Ross
// (2017) and the measurable versions of its qualitative claims. Each
// subcommand corresponds to an experiment id in DESIGN.md §4 and a section
// of EXPERIMENTS.md:
//
//	lolbench table1|table2|table3|tables   conformance Tables I-III
//	lolbench fig1 [-np 4] [-f prog.lol]    Figure 1: PGAS symmetric layout
//	lolbench fig2 [-trials 20]             Figure 2: barrier determinism
//	lolbench listingA|B|C|D [-np 4]        §VI example programs
//	lolbench backends                      E1: interpreter vs compiler
//	lolbench weakscale [-darts 200]        E4: worker-scheduler weak scaling
//	lolbench scaling                       E2: Parallella -> XC40 scaling
//	lolbench barriers                      T2 micro: HUGZ latency
//	lolbench locks                         T2 micro: lock contention
//	lolbench remote                        T2 micro: put/get cost vs distance
//	lolbench toolchain                     E3: lcc -> Go over testdata/
//	lolbench serve [-clients 8] [-reqs 50] lolserv load test: req/s, cache, p50/p99
//	lolbench serve -scenario zipf          hot-key /v1/batch load, result cache on/off
//	lolbench serve -scenario promote       native-tier promotion vs -native-threshold=0
//	lolbench all                           everything above
//
// With -bench-json DIR, the serve scenarios merge their metrics into
// DIR/BENCH_serve.json (keyed by scenario) and `lolbench backends`
// writes DIR/BENCH_backend.json — the machine-readable artifacts CI
// uploads alongside the human-readable report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	np := flag.Int("np", 4, "PE count for figure/listing experiments")
	trials := flag.Int("trials", 20, "trials for the Figure 2 determinism experiment")
	file := flag.String("f", "testdata/nbody.lol", "program for the Figure 1 layout")
	dir := flag.String("testdata", "testdata", "directory of .lol programs")
	clients := flag.Int("clients", 8, "concurrent clients for the serve experiment")
	reqs := flag.Int("reqs", 50, "requests per client for the serve experiment")
	workers := flag.Int("workers", 4, "server worker slots for the serve experiment")
	scenario := flag.String("scenario", "mixed", "serve scenario: mixed (per-request load), zipf (hot-key batches, cache on vs off), or promote (native tier vs threshold 0)")
	darts := flag.Int("darts", 200, "darts per PE for the weakscale experiment")
	benchJSON := flag.String("bench-json", "", "directory to write BENCH_serve.json / BENCH_backend.json into (empty = don't)")
	flag.Usage = usage
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Subcommand first, flags after: `lolbench fig1 -np 8`.
	cmd := os.Args[1]
	if err := flag.CommandLine.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	w := os.Stdout
	var err error
	switch cmd {
	case "table1":
		err = experiments.Tables(w, "I")
	case "table2":
		err = experiments.Tables(w, "II")
	case "table3":
		err = experiments.Tables(w, "III")
	case "tables":
		err = experiments.Tables(w, "all")
	case "fig1":
		err = experiments.Fig1(w, *file, *np)
	case "fig2":
		if _, err = experiments.Fig2(w, []int{2, 4, 8, 16}, *trials); err == nil {
			fmt.Fprintln(w)
			err = experiments.Fig2Draw(w, *np)
		}
	case "listingA", "listingB", "listingC", "listingD":
		err = experiments.Listings(w, *dir, *np, cmd[len("listing"):])
	case "backends":
		var rows []experiments.BackendsResult
		if rows, err = experiments.Backends(w); err == nil && *benchJSON != "" {
			err = writeBenchBackend(*benchJSON, rows)
		}
	case "weakscale":
		var rows []experiments.WeakscaleResult
		if rows, err = experiments.Weakscale(w, []int{8, 256, 4096}, *darts); err == nil && *benchJSON != "" {
			err = writeBenchWeakscale(*benchJSON, rows)
		}
	case "scaling":
		_, err = experiments.Scaling(w, []int{1, 2, 4, 8, 16}, []int{32, 64, 128})
	case "barriers":
		err = experiments.BarrierScaling(w, []int{2, 4, 8, 16, 64}, 2000)
	case "locks":
		_, err = experiments.LockContention(w, []int{1, 2, 4, 8, 16}, 500)
	case "remote":
		err = experiments.RemoteAccess(w)
	case "noc":
		err = experiments.NocHeatmap(w, 16, 8, 2)
	case "toolchain":
		err = experiments.Toolchain(w, *dir)
	case "serve":
		var m *experiments.ServeMetrics
		switch *scenario {
		case "zipf":
			m, err = experiments.ServeZipf(w, *clients, *reqs, *workers)
		case "promote":
			m, err = experiments.ServePromote(w, *clients, *reqs, *workers)
		case "mixed", "":
			m, err = experiments.Serve(w, *clients, *reqs, *workers)
		default:
			fmt.Fprintf(os.Stderr, "lolbench: unknown serve scenario %q (want mixed, zipf, or promote)\n", *scenario)
			os.Exit(2)
		}
		if err == nil && m != nil && *benchJSON != "" {
			err = writeBenchServe(*benchJSON, m)
		}
	case "all":
		err = runAll(w, *dir, *np, *trials)
	default:
		fmt.Fprintf(os.Stderr, "lolbench: unknown experiment %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runAll(w *os.File, dir string, np, trials int) error {
	steps := []func() error{
		func() error { return experiments.Tables(w, "all") },
		func() error { return sep(w, experiments.Fig1(w, dir+"/nbody.lol", np)) },
		func() error {
			_, err := experiments.Fig2(w, []int{2, 4, 8, 16}, trials)
			if err == nil {
				fmt.Fprintln(w)
				err = experiments.Fig2Draw(w, np)
			}
			return sep(w, err)
		},
		func() error { _, err := experiments.Backends(w); return sep(w, err) },
		func() error { _, err := experiments.Weakscale(w, []int{8, 256, 4096}, 200); return sep(w, err) },
		func() error {
			_, err := experiments.Scaling(w, []int{1, 2, 4, 8, 16}, []int{32, 64, 128})
			return sep(w, err)
		},
		func() error { return sep(w, experiments.BarrierScaling(w, []int{2, 4, 8, 16, 64}, 2000)) },
		func() error { _, err := experiments.LockContention(w, []int{1, 2, 4, 8, 16}, 500); return sep(w, err) },
		func() error { return sep(w, experiments.RemoteAccess(w)) },
		func() error { return sep(w, experiments.NocHeatmap(w, 16, 8, 2)) },
		func() error { return sep(w, experiments.Toolchain(w, dir)) },
		func() error { _, err := experiments.Serve(w, 8, 50, 4); return sep(w, err) },
		func() error { _, err := experiments.ServeZipf(w, 8, 50, 4); return sep(w, err) },
		func() error { _, err := experiments.ServePromote(w, 8, 50, 4); return sep(w, err) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

// writeBenchServe merges one scenario's metrics into BENCH_serve.json,
// preserving entries written by earlier invocations so CI can run the
// scenarios as separate steps and upload one artifact.
func writeBenchServe(dir string, m *experiments.ServeMetrics) error {
	path := filepath.Join(dir, "BENCH_serve.json")
	all := map[string]*experiments.ServeMetrics{}
	if prev, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(prev, &all) // a corrupt file is overwritten
	}
	all[m.Scenario] = m
	return writeJSONFile(path, all)
}

// benchBackendRow is the machine-readable form of one E1 comparison row.
// vm_over_compile_ratio is the gap the bytecode tier's superinstruction
// fusion drives down; CI compares it against the committed baseline in
// BENCH_backend.json and warns (never fails) on a >15% regression.
type benchBackendRow struct {
	Workload      string  `json:"workload"`
	InterpMS      float64 `json:"interp_ms"`
	VMMS          float64 `json:"vm_ms"`
	CompileMS     float64 `json:"compile_ms"`
	Speedup       float64 `json:"speedup_interp_over_compile"`
	VMOverCompile float64 `json:"vm_over_compile_ratio"`
}

func writeBenchBackend(dir string, rows []experiments.BackendsResult) error {
	out := make([]any, 0, len(rows))
	for _, r := range rows {
		out = append(out, benchBackendRow{
			Workload:      r.Workload,
			InterpMS:      float64(r.Interp.Microseconds()) / 1000,
			VMMS:          float64(r.VM.Microseconds()) / 1000,
			CompileMS:     float64(r.Compile.Microseconds()) / 1000,
			Speedup:       r.Speedup(),
			VMOverCompile: r.VMOverCompile(),
		})
	}
	return mergeBenchBackendRows(dir, out, false)
}

// benchWeakscaleRow is the machine-readable form of one E4 weak-scaling
// point. The workload key carries the "weakscale" prefix that separates
// this family from the E1 rows in the shared BENCH_backend.json; the CI
// gap check selects rows by vm_over_compile_ratio, which these rows
// don't have, so the two families coexist in one artifact.
type benchWeakscaleRow struct {
	Workload   string  `json:"workload"`
	NP         int     `json:"np"`
	Workers    int     `json:"workers"`
	WallMS     float64 `json:"wall_ms"`
	PEsPerSec  float64 `json:"pes_per_sec"`
	SimMS      float64 `json:"sim_ms"`
	Parks      int64   `json:"parks"`
	MaxRunning int     `json:"max_running"`
}

func writeBenchWeakscale(dir string, rows []experiments.WeakscaleResult) error {
	out := make([]any, 0, len(rows))
	for _, r := range rows {
		out = append(out, benchWeakscaleRow{
			Workload:   fmt.Sprintf("weakscale montecarlo np=%d", r.NP),
			NP:         r.NP,
			Workers:    r.Workers,
			WallMS:     float64(r.Wall.Microseconds()) / 1000,
			PEsPerSec:  r.PEsPerSec,
			SimMS:      r.SimMS,
			Parks:      r.Parks,
			MaxRunning: r.MaxRunning,
		})
	}
	return mergeBenchBackendRows(dir, out, true)
}

// mergeBenchBackendRows rewrites one family of BENCH_backend.json rows —
// the E4 weak-scaling rows (workload prefix "weakscale") or the E1
// backend rows (everything else) — while preserving the other family, so
// `lolbench backends` and `lolbench weakscale` can each refresh the
// shared committed baseline without clobbering the other's columns.
func mergeBenchBackendRows(dir string, rows []any, weakscale bool) error {
	path := filepath.Join(dir, "BENCH_backend.json")
	var merged []any
	if prev, err := os.ReadFile(path); err == nil {
		var old []json.RawMessage
		_ = json.Unmarshal(prev, &old) // a corrupt file is overwritten
		for _, raw := range old {
			var key struct {
				Workload string `json:"workload"`
			}
			_ = json.Unmarshal(raw, &key)
			if strings.HasPrefix(key.Workload, "weakscale") != weakscale {
				// Kept verbatim (RawMessage), so rewriting one family never
				// reformats the other's committed rows.
				merged = append(merged, raw)
			}
		}
	}
	merged = append(merged, rows...)
	return writeJSONFile(path, merged)
}

func writeJSONFile(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sep(w *os.File, err error) error {
	fmt.Fprintln(w, "\n"+string(make([]byte, 0)))
	fmt.Fprintln(w, "────────────────────────────────────────────────────────────────")
	return err
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: lolbench [flags] <experiment>

experiments:
  table1 table2 table3 tables   regenerate conformance Tables I-III
  fig1                          Figure 1: PGAS symmetric memory layout
  fig2                          Figure 2: barrier determinism (+ failure injection)
  listingA listingB listingC listingD
                                run the §VI example programs
  backends                      E1: interpreter vs compiled backend
  weakscale                     E4: worker-scheduler weak scaling (vm tier,
                                NP 8/256/4096 montecarlo, XC40 simulated time)
  scaling                       E2: weak scaling, Parallella and XC40 models
  barriers locks remote noc     T2 microbenchmarks + NoC traffic heatmap
  toolchain                     E3: lcc -> Go over testdata/
  serve                         lolserv load test: req/s, cache hit rate, p50/p99
                                (-scenario zipf: hot-key /v1/batch load, result
                                 cache on vs -result-cache=0, measured speedup)
                                (-scenario promote: native-tier promotion of a hot
                                 program vs -native-threshold=0, measured speedup)
  all                           run everything

flags:
`)
	flag.PrintDefaults()
}
