// Command lcc is the parallel-LOLCODE compiler driver, the namesake of the
// paper's `lcc code.lol -o executable.x`. It translates LOLCODE with the
// parallel extensions into a standalone Go main package that targets the
// shmem PGAS runtime — the role C + OpenSHMEM played in the original
// system. Build the result with the host Go toolchain:
//
//	lcc -o gen/main.go testdata/nbody.lol
//	go run ./gen -np 16 -machine parallella
//
// With -check, lcc stops after parsing and semantic analysis and reports
// diagnostics only.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/gogen"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	check := flag.Bool("check", false, "parse and type-check only")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lcc [-o out.go] [-check] code.lol\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	prog, err := core.ParseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *check {
		fmt.Fprintf(os.Stderr, "%s: OK (%d shared symbols, %d locks, %d functions)\n",
			flag.Arg(0), len(prog.Info.Shared), len(prog.Info.Locks), len(prog.Info.Funcs))
		return
	}

	src, err := gogen.Emit(prog.Info)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(src)
		return
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := os.WriteFile(*out, src, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
